/**
 * @file
 * Shared harness for the figure-regeneration benches: flag parsing,
 * the parallel sweep harness, and per-run observability capture so
 * one binary can print a whole paper figure.
 *
 * Common flags:
 *   --scale=N   footprint divisor vs the paper (default 32; 1 = paper)
 *   --seed=N    master seed (default 42)
 *   --jobs=N    concurrent simulations (default: hardware threads)
 *   --csv       also emit machine-readable CSV after each table
 *   --workload=X  restrict to one Table III abbreviation
 *
 * Observability flags:
 *   --trace=FILE    Chrome trace-event JSON of every run (Perfetto)
 *   --trace-all     enable the hot categories too (net, dca)
 *   --report=FILE   JSON run report (config, counters, percentiles)
 *   --samples=FILE  time-series CSV, one section per run
 *   --sample=N      sampling period in cycles (default 10000; 0 = off)
 *   --page-stats    per-page lifecycle telemetry; adds a "page_stats"
 *                   section to each report run (src/obs/pagestats.hh)
 *   --timeseries=N  event time-series with N-cycle intervals; adds a
 *                   "timeseries" section to each report run (0 = off)
 *   --host-prof[=FILE]  host-side self-profiling: attributes the
 *                   simulator's wall-clock time per component/event
 *                   type, adds a "host_profile" section to each report
 *                   run, and (with =FILE) writes the sweep-aggregated
 *                   folded stacks for flamegraph/speedscope
 *   --host-gate=N   warn (never fail) when the sweep dispatched fewer
 *                   than N events/sec of host wall time; implies
 *                   --host-prof
 *   --progress      one-line sweep progress on stderr (done/total,
 *                   elapsed, ETA); auto-suppressed when stderr is not
 *                   a terminal
 *   --log=LEVEL     stderr log level: error|warn|info|trace
 *                   (log lines carry a [tick] prefix while a system runs)
 *
 * Chaos flags (fault injection, see src/sys/chaos.hh):
 *   --chaos=SPEC    inject faults: a bare rate ("0.01") or key=value
 *                   pairs ("dma=0.5,link=0.02,ack=0.2,timeout=200000")
 *   --chaos-seed=N  seed of the injector's private RNG streams
 *
 * Concurrency model: benches submit every independent run of a figure
 * to a bench::Sweep, which fans them out across --jobs worker threads
 * (sys::SweepRunner) and returns results in submission order. Each
 * run records into its own trace/report/samples fragments (the obs
 * sinks are thread-local), and ObsState merges the fragments in
 * submission order when the program exits — so every byte of stdout,
 * CSV, trace, report and samples output is identical for --jobs=1 and
 * --jobs=16.
 */

#ifndef GRIFFIN_BENCH_COMMON_HH
#define GRIFFIN_BENCH_COMMON_HH

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/obs/sampler.hh"
#include "src/obs/trace.hh"
#include "src/sim/log.hh"
#include "src/sys/chaos.hh"
#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/sys/sweep_runner.hh"
#include "src/workloads/workload.hh"

namespace griffin::bench {

/** Parsed command-line options. */
struct Options
{
    unsigned scaleDiv = 32;
    std::uint64_t seed = 42;
    /** Concurrent simulations; 0 = one per hardware thread. */
    unsigned jobs = 0;
    bool csv = false;
    std::vector<std::string> workloads; // empty = all ten

    /** @name Observability outputs (empty = disabled) @{ */
    std::string traceFile;
    std::string reportFile;
    std::string samplesFile;
    bool traceAllCategories = false;
    Tick samplePeriod = 10000;
    /** Per-page lifecycle telemetry (--page-stats). */
    bool pageStats = false;
    /** Event time-series interval width (--timeseries=N; 0 = off). */
    Tick timeseriesTick = 0;
    /** Host-side self-profiling (--host-prof[=FILE]). */
    bool hostProf = false;
    /** Folded-stack output path (--host-prof=FILE; empty = none). */
    std::string hostProfFile;
    /** Sweep progress line on stderr (--progress). */
    bool progress = false;
    /**
     * Soft host-throughput floor in dispatched events/sec
     * (--host-gate=N; 0 = off). Falling below it prints a WARNING but
     * never changes the exit code: host time is machine-dependent.
     */
    std::uint64_t hostGateEventsPerSec = 0;
    /** @} */

    /** Fault injection, set by --chaos / --chaos-seed. */
    std::optional<sys::ChaosConfig> chaos;

    /**
     * Parse @p flag's "=value" tail as an unsigned integer. Rejects
     * non-numeric input, trailing garbage, overflow, and values
     * outside [min, max] with a friendly message and exit code 2 —
     * never an uncaught std::stoul throw.
     */
    static std::uint64_t
    parseNum(const std::string &arg, std::size_t eq, const char *flag,
             std::uint64_t min, std::uint64_t max)
    {
        const std::string text = arg.substr(eq);
        errno = 0;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
        if (text.empty() || end != text.c_str() + text.size() ||
            text[0] == '-' || errno == ERANGE || v < min || v > max) {
            std::cerr << "error: " << flag << " wants an integer in ["
                      << min << ", " << max << "], got '" << text
                      << "'\n";
            std::exit(2);
        }
        return v;
    }

    /**
     * @param notes an optional bench-specific line appended to the
     *        --help output — the place to declare flags this bench
     *        pins or ignores (perf_gate pins scale/seed/sample, the
     *        single-workload figures ignore --workload).
     */
    static Options
    parse(int argc, char **argv, const char *notes = nullptr)
    {
        Options opt;
        std::string chaos_spec;
        std::optional<std::uint64_t> chaos_seed;
        std::vector<std::string> seen;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            // Every flag is single-shot except --workload, which
            // accumulates a restriction list. A duplicate almost
            // always means a sweep script silently overriding its own
            // earlier value, so it is an error rather than
            // last-one-wins.
            const std::string key = arg.substr(0, arg.find('='));
            if (key != "--workload" &&
                std::find(seen.begin(), seen.end(), key) != seen.end()) {
                std::cerr << "error: duplicate flag " << key
                          << " (only --workload may repeat)\n";
                std::exit(2);
            }
            seen.push_back(key);
            if (arg.rfind("--scale=", 0) == 0) {
                // 0 would divide every footprint by zero downstream.
                opt.scaleDiv = unsigned(
                    parseNum(arg, 8, "--scale", 1, 1u << 20));
            } else if (arg.rfind("--seed=", 0) == 0) {
                opt.seed = parseNum(arg, 7, "--seed", 0,
                                    std::uint64_t(-1));
            } else if (arg.rfind("--jobs=", 0) == 0) {
                opt.jobs = unsigned(
                    parseNum(arg, 7, "--jobs", 1, 1024));
            } else if (arg == "--csv") {
                opt.csv = true;
            } else if (arg.rfind("--workload=", 0) == 0) {
                opt.workloads.push_back(arg.substr(11));
            } else if (arg.rfind("--trace=", 0) == 0) {
                opt.traceFile = arg.substr(8);
            } else if (arg == "--trace-all") {
                opt.traceAllCategories = true;
            } else if (arg.rfind("--report=", 0) == 0) {
                opt.reportFile = arg.substr(9);
            } else if (arg.rfind("--samples=", 0) == 0) {
                opt.samplesFile = arg.substr(10);
            } else if (arg.rfind("--sample=", 0) == 0) {
                opt.samplePeriod = Tick(parseNum(arg, 9, "--sample", 0,
                                                 std::uint64_t(-1)));
            } else if (arg == "--page-stats") {
                opt.pageStats = true;
            } else if (arg.rfind("--timeseries=", 0) == 0) {
                opt.timeseriesTick = Tick(parseNum(
                    arg, 13, "--timeseries", 0, std::uint64_t(-1)));
            } else if (arg == "--host-prof") {
                opt.hostProf = true;
            } else if (arg.rfind("--host-prof=", 0) == 0) {
                opt.hostProf = true;
                opt.hostProfFile = arg.substr(12);
            } else if (arg == "--progress") {
                opt.progress = true;
            } else if (arg.rfind("--host-gate=", 0) == 0) {
                opt.hostGateEventsPerSec = parseNum(
                    arg, 12, "--host-gate", 1, std::uint64_t(-1));
                opt.hostProf = true; // the gate needs the profiler
            } else if (arg.rfind("--chaos=", 0) == 0) {
                chaos_spec = arg.substr(8);
            } else if (arg.rfind("--chaos-seed=", 0) == 0) {
                chaos_seed = parseNum(arg, 13, "--chaos-seed", 0,
                                      std::uint64_t(-1));
            } else if (arg.rfind("--log=", 0) == 0) {
                const std::string lvl = arg.substr(6);
                if (lvl == "error")
                    sim::Log::setLevel(sim::LogLevel::Error);
                else if (lvl == "warn")
                    sim::Log::setLevel(sim::LogLevel::Warn);
                else if (lvl == "info")
                    sim::Log::setLevel(sim::LogLevel::Info);
                else if (lvl == "trace")
                    sim::Log::setLevel(sim::LogLevel::Trace);
                else
                    std::cerr << "unknown log level '" << lvl
                              << "' (error|warn|info|trace)\n";
            } else if (arg == "--help" || arg == "-h") {
                std::cout << "flags: --scale=N --seed=N --jobs=N --csv"
                             " --workload=ABBV (repeatable)"
                             " --trace=FILE [--trace-all]"
                             " --report=FILE --samples=FILE"
                             " --sample=N --page-stats --timeseries=N"
                             " --host-prof[=FILE] --host-gate=N"
                             " --progress --log=LEVEL"
                             " --chaos=SPEC --chaos-seed=N\n";
                if (notes)
                    std::cout << "note: " << notes << "\n";
                std::exit(0);
            } else {
                std::cerr << "warning: unrecognized flag '" << arg
                          << "' ignored (see --help)\n";
            }
        }
        if (!chaos_spec.empty()) {
            auto cc = sys::ChaosConfig::parse(chaos_spec);
            if (!cc) {
                std::cerr << "error: malformed --chaos spec '"
                          << chaos_spec
                          << "' (a rate in [0,1] or key=value pairs; "
                             "see --help)\n";
                std::exit(2);
            }
            if (chaos_seed)
                cc->seed = *chaos_seed;
            opt.chaos = *cc;
        } else if (chaos_seed) {
            std::cerr << "warning: --chaos-seed without --chaos has no "
                         "effect\n";
        }
        if (opt.workloads.empty())
            opt.workloads = wl::workloadNames();
        return opt;
    }

    /** True when any run should carry a sampler. */
    bool
    wantSamples() const
    {
        return samplePeriod > 0 &&
               (!reportFile.empty() || !samplesFile.empty());
    }

    wl::WorkloadConfig
    workloadConfig() const
    {
        wl::WorkloadConfig cfg;
        cfg.scaleDiv = scaleDiv;
        cfg.seed = seed;
        return cfg;
    }
};

/** The run-label policy half ("griffin" / "first-touch"). */
inline const char *
policyName(const sys::SystemConfig &scfg)
{
    return scfg.policy == sys::PolicyKind::Griffin ? "griffin"
                                                   : "first-touch";
}

/**
 * Process-lifetime observability state for a bench binary. Every run
 * deposits its own fragments — trace session, report JSON, samples
 * CSV — under a mutex, keyed by submission index; the files are
 * written at program exit by merging the fragments in index order.
 * Concurrent runs therefore serialize only a cheap hand-off, and the
 * merged output is independent of completion order.
 */
class ObsState
{
  public:
    explicit ObsState(const Options &opt)
        : _traceFile(opt.traceFile), _reportFile(opt.reportFile),
          _samplesFile(opt.samplesFile),
          _hostProfFile(opt.hostProfFile),
          _categories(opt.traceAllCategories ? obs::allCategories
                                             : obs::defaultCategories)
    {
    }

    ~ObsState()
    {
        if (!_traceFile.empty()) {
            std::vector<const obs::TraceSession *> sessions;
            std::size_t events = 0;
            for (const Slot &slot : _slots) {
                sessions.push_back(slot.trace.get());
                if (slot.trace)
                    events += slot.trace->eventCount();
            }
            std::ofstream os(_traceFile);
            obs::TraceSession::writeMerged(os, sessions);
            std::cerr << "trace: " << _traceFile << " (" << events
                      << " events)\n";
        }
        if (!_reportFile.empty()) {
            obs::json::Value runs = obs::json::Value::array();
            for (Slot &slot : _slots) {
                if (slot.hasReport)
                    runs.push(std::move(slot.report));
            }
            obs::json::Value doc = sys::reportDocument(std::move(runs));
            std::ofstream os(_reportFile);
            os << doc.dump(2) << "\n";
            std::cerr << "report: " << _reportFile << "\n";
        }
        if (!_samplesFile.empty()) {
            std::string csv;
            for (const Slot &slot : _slots)
                csv += slot.samplesCsv;
            if (csv.empty()) {
                std::cerr << "samples: nothing sampled (is --sample=0?), "
                          << "not writing " << _samplesFile << "\n";
            } else {
                std::ofstream os(_samplesFile);
                os << csv;
                std::cerr << "samples: " << _samplesFile << "\n";
            }
        }
        if (!_hostProfFile.empty()) {
            // Sweep-level profile: merge per-run profiles in slot
            // (= submission) order so bucket ordering is deterministic
            // regardless of completion order.
            obs::HostProfile total;
            for (const Slot &slot : _slots) {
                if (slot.hostProfile.enabled)
                    total.merge(slot.hostProfile);
            }
            if (!total.enabled) {
                std::cerr << "host-prof: no runs were profiled, not "
                          << "writing " << _hostProfFile << "\n";
            } else {
                std::ofstream os(_hostProfFile);
                os << total.folded();
                std::cerr << "host-prof: " << _hostProfFile << " ("
                          << total.buckets.size() << " buckets, "
                          << total.events << " dispatches)\n";
            }
        }
    }

    bool tracing() const { return !_traceFile.empty(); }
    std::uint32_t categories() const { return _categories; }

    /** Claim the next submission-ordered slot (main thread). */
    std::size_t
    reserveSlot()
    {
        std::lock_guard<std::mutex> guard(_mu);
        _slots.emplace_back();
        return _slots.size() - 1;
    }

    /**
     * Deposit one run's fragments (worker thread, after the run).
     * @p trace may be null; @p sampler may be null.
     */
    void
    addRun(std::size_t slot, const std::string &label,
           const sys::SystemConfig &scfg, const sys::RunResult &result,
           const obs::Sampler *sampler,
           std::shared_ptr<obs::TraceSession> trace)
    {
        std::lock_guard<std::mutex> guard(_mu);
        Slot &s = _slots[slot];
        if (!_reportFile.empty()) {
            s.report = sys::runReportJson(label, scfg, result, sampler);
            s.hasReport = true;
        }
        if (!_samplesFile.empty() && sampler)
            s.samplesCsv = "# " + label + "\n" + sampler->csv();
        if (result.hostProfile.enabled)
            s.hostProfile = result.hostProfile;
        s.trace = std::move(trace);
    }

  private:
    struct Slot
    {
        obs::json::Value report;
        bool hasReport = false;
        std::string samplesCsv;
        obs::HostProfile hostProfile;
        std::shared_ptr<obs::TraceSession> trace;
    };

    std::string _traceFile, _reportFile, _samplesFile, _hostProfFile;
    std::uint32_t _categories;

    std::mutex _mu;
    std::vector<Slot> _slots;
};

/** The bench-wide ObsState; the first call's options stick. */
inline ObsState &
obsState(const Options &opt)
{
    static ObsState state(opt);
    return state;
}

/**
 * A batch of independent runs. add() every run of the figure, then
 * run() once; results come back in submission order, and each run's
 * observability fragments land in the process-wide ObsState.
 *
 *   bench::Sweep sweep(opt);
 *   const auto base = sweep.add("MT", sys::SystemConfig::baseline());
 *   const auto grif = sweep.add("MT", sys::SystemConfig::griffinDefault());
 *   const auto &rs = sweep.run();
 *   ... rs[base].cycles, rs[grif].cycles ...
 */
class Sweep
{
  public:
    explicit Sweep(const Options &opt)
        : _opt(opt), _runner(opt.jobs), _obs(obsState(opt))
    {
    }

    /**
     * Submit one run of @p name under @p scfg.
     *
     * @param dim  the distinguishing config dimension for sweeps that
     *             run the same workload/policy more than once
     *             ("gpus=4", "alpha=0.25"); it keeps run labels
     *             unique, which sys::compare enforces.
     * @param setup optional extra per-run setup (access probes, ...),
     *             invoked on the worker thread before the run.
     * @return the submission index into run()'s result vector.
     */
    std::size_t
    add(const std::string &name, const sys::SystemConfig &scfg,
        const std::string &dim = std::string(),
        std::function<void(sys::MultiGpuSystem &)> setup = nullptr)
    {
        bool known = false;
        for (const auto &w : wl::workloadNames())
            known = known || w == name;
        if (!known) {
            std::cerr << "unknown workload: " << name << "\n";
            std::exit(1);
        }

        std::string label = name + "/" + policyName(scfg);
        if (!dim.empty())
            label += "/" + dim;

        const std::size_t slot = _obs.reserveSlot();

        // Per-run sinks, created on the main thread so fragments are
        // slot-ordered, attached and filled on the worker thread.
        std::shared_ptr<obs::TraceSession> trace;
        if (_obs.tracing()) {
            trace = std::make_shared<obs::TraceSession>(
                _obs.categories());
            trace->beginProcess(label);
        }
        std::shared_ptr<obs::Sampler> sampler;
        if (_opt.wantSamples())
            sampler = std::make_shared<obs::Sampler>();
        const Tick period = _opt.samplePeriod;

        sys::SweepJob job;
        job.label = label;
        job.config = scfg;
        if (_opt.chaos)
            job.config.chaos = *_opt.chaos;
        if (_opt.pageStats)
            job.config.pageStats.enabled = true;
        if (_opt.timeseriesTick > 0)
            job.config.timeseriesTick = _opt.timeseriesTick;
        if (_opt.hostProf)
            job.config.hostProf = true;
        job.makeWorkload = [name, wcfg = _opt.workloadConfig()] {
            return wl::makeWorkload(name, wcfg);
        };
        job.preRun = [trace, sampler, period,
                      setup = std::move(setup)](
                         sys::MultiGpuSystem &system) {
            if (trace)
                trace->attach();
            if (sampler) {
                system.registerProbes(*sampler);
                sampler->start(system.engine(), period);
            }
            if (setup)
                setup(system);
        };
        job.postRun = [obs = &_obs, slot, label, scfg, trace,
                       sampler](sys::MultiGpuSystem &,
                                const sys::RunResult &result) {
            if (sampler)
                sampler->stop();
            if (trace)
                trace->detach();
            obs->addRun(slot, label, scfg, result, sampler.get(),
                        trace);
        };
        return _runner.submit(std::move(job));
    }

    /** Execute the batch; results in submission order. */
    std::vector<sys::RunResult>
    run()
    {
        // Progress is stderr-only UI, never part of the deterministic
        // output contract — and it stays silent when stderr is a pipe
        // so redirected logs don't fill with \r-rewritten lines.
        if (_opt.progress && isatty(fileno(stderr))) {
            const auto start = std::chrono::steady_clock::now();
            _runner.setProgress([start](std::size_t done,
                                        std::size_t total) {
                using namespace std::chrono;
                const double elapsed =
                    duration<double>(steady_clock::now() - start)
                        .count();
                const double eta =
                    done > 0 ? elapsed * double(total - done) /
                                   double(done)
                             : 0.0;
                std::fprintf(stderr,
                             "\rsweep: %zu/%zu runs  %.1fs elapsed"
                             "  ~%.1fs left ",
                             done, total, elapsed, eta);
                if (done == total)
                    std::fputc('\n', stderr);
                std::fflush(stderr);
            });
        }
        return _runner.run();
    }

    unsigned workers() const { return _runner.workers(); }

  private:
    const Options &_opt;
    sys::SweepRunner _runner;
    ObsState &_obs;
};

/**
 * Run one workload on one system configuration, immediately. The
 * serial convenience wrapper over Sweep for benches whose next config
 * depends on the previous result; everything independent should batch
 * runs through a Sweep instead.
 */
inline sys::RunResult
runWorkload(const std::string &name, const sys::SystemConfig &scfg,
            const Options &opt, const std::string &dim = std::string())
{
    Sweep sweep(opt);
    sweep.add(name, scfg, dim);
    return sweep.run().at(0);
}

/** Print a table, optionally followed by CSV. */
inline void
emit(const sys::Table &table, const Options &opt)
{
    std::cout << table.str() << "\n";
    if (opt.csv)
        std::cout << "CSV:\n" << table.csv() << "\n";
}

/**
 * After a profiled sweep: print the aggregated host-time summary to
 * stderr (host wall times are machine-dependent, so they stay out of
 * the deterministic stdout contract) and evaluate the --host-gate
 * floor. The gate only warns — the exit code never changes.
 */
inline void
emitHostSummary(const std::vector<sys::RunResult> &results,
                const Options &opt)
{
    if (!opt.hostProf)
        return;
    const obs::HostProfile total =
        sys::SweepRunner::aggregateHostProfiles(results);
    if (!total.enabled)
        return;
    std::ostringstream os;
    os << "host-prof: " << total.events << " dispatches, "
       << sys::Table::num(total.eventsPerSec() / 1e6, 2)
       << "M events/sec, "
       << sys::Table::num(total.attributedFraction() * 100.0, 1)
       << "% attributed, "
       << sys::Table::num(total.obsFraction() * 100.0, 1)
       << "% telemetry overhead\n";
    std::vector<obs::HostProfile::Bucket> top = total.buckets;
    std::sort(top.begin(), top.end(),
              [](const auto &a, const auto &b) {
                  return a.selfNs != b.selfNs ? a.selfNs > b.selfNs
                                              : a.name() < b.name();
              });
    if (top.size() > 5)
        top.resize(5);
    std::size_t shown = 0;
    for (const auto &b : top) {
        os << "  top" << ++shown << ": " << b.name() << "  "
           << sys::Table::num(double(b.selfNs) / 1e6, 1) << " ms ("
           << b.count << " events)\n";
    }
    std::cerr << os.str();
    if (opt.hostGateEventsPerSec > 0 &&
        total.eventsPerSec() < double(opt.hostGateEventsPerSec)) {
        std::cerr << "WARNING: host throughput "
                  << sys::Table::num(total.eventsPerSec(), 0)
                  << " events/sec below --host-gate="
                  << opt.hostGateEventsPerSec
                  << " (soft gate: warning only)\n";
    }
}

} // namespace griffin::bench

#endif // GRIFFIN_BENCH_COMMON_HH
