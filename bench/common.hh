/**
 * @file
 * Shared harness for the figure-regeneration benches: flag parsing,
 * workload runners, and run caching so one binary can print a whole
 * paper figure.
 *
 * Common flags:
 *   --scale=N   footprint divisor vs the paper (default 16; 1 = paper)
 *   --seed=N    master seed (default 42)
 *   --csv       also emit machine-readable CSV after each table
 *   --workload=X  restrict to one Table III abbreviation
 *
 * Observability flags:
 *   --trace=FILE    Chrome trace-event JSON of every run (Perfetto)
 *   --trace-all     enable the hot categories too (net, dca)
 *   --report=FILE   JSON run report (config, counters, percentiles)
 *   --samples=FILE  time-series CSV, one section per run
 *   --sample=N      sampling period in cycles (default 10000; 0 = off)
 *   --log=LEVEL     stderr log level: error|warn|info|trace
 *                   (log lines carry a [tick] prefix while a system runs)
 */

#ifndef GRIFFIN_BENCH_COMMON_HH
#define GRIFFIN_BENCH_COMMON_HH

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/sampler.hh"
#include "src/obs/trace.hh"
#include "src/sim/log.hh"
#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/workloads/workload.hh"

namespace griffin::bench {

/** Parsed command-line options. */
struct Options
{
    unsigned scaleDiv = 32;
    std::uint64_t seed = 42;
    bool csv = false;
    std::vector<std::string> workloads; // empty = all ten

    /** @name Observability outputs (empty = disabled) @{ */
    std::string traceFile;
    std::string reportFile;
    std::string samplesFile;
    bool traceAllCategories = false;
    Tick samplePeriod = 10000;
    /** @} */

    static Options
    parse(int argc, char **argv)
    {
        Options opt;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--scale=", 0) == 0) {
                opt.scaleDiv = unsigned(std::stoul(arg.substr(8)));
            } else if (arg.rfind("--seed=", 0) == 0) {
                opt.seed = std::stoull(arg.substr(7));
            } else if (arg == "--csv") {
                opt.csv = true;
            } else if (arg.rfind("--workload=", 0) == 0) {
                opt.workloads.push_back(arg.substr(11));
            } else if (arg.rfind("--trace=", 0) == 0) {
                opt.traceFile = arg.substr(8);
            } else if (arg == "--trace-all") {
                opt.traceAllCategories = true;
            } else if (arg.rfind("--report=", 0) == 0) {
                opt.reportFile = arg.substr(9);
            } else if (arg.rfind("--samples=", 0) == 0) {
                opt.samplesFile = arg.substr(10);
            } else if (arg.rfind("--sample=", 0) == 0) {
                opt.samplePeriod = Tick(std::stoull(arg.substr(9)));
            } else if (arg.rfind("--log=", 0) == 0) {
                const std::string lvl = arg.substr(6);
                if (lvl == "error")
                    sim::Log::setLevel(sim::LogLevel::Error);
                else if (lvl == "warn")
                    sim::Log::setLevel(sim::LogLevel::Warn);
                else if (lvl == "info")
                    sim::Log::setLevel(sim::LogLevel::Info);
                else if (lvl == "trace")
                    sim::Log::setLevel(sim::LogLevel::Trace);
                else
                    std::cerr << "unknown log level '" << lvl
                              << "' (error|warn|info|trace)\n";
            } else if (arg == "--help" || arg == "-h") {
                std::cout << "flags: --scale=N --seed=N --csv"
                             " --workload=ABBV (repeatable)"
                             " --trace=FILE [--trace-all]"
                             " --report=FILE --samples=FILE"
                             " --sample=N --log=LEVEL\n";
                std::exit(0);
            } else {
                std::cerr << "warning: unrecognized flag '" << arg
                          << "' ignored (see --help)\n";
            }
        }
        if (opt.workloads.empty())
            opt.workloads = wl::workloadNames();
        return opt;
    }

    /** True when any run should carry a sampler. */
    bool
    wantSamples() const
    {
        return samplePeriod > 0 &&
               (!reportFile.empty() || !samplesFile.empty());
    }

    wl::WorkloadConfig
    workloadConfig() const
    {
        wl::WorkloadConfig cfg;
        cfg.scaleDiv = scaleDiv;
        cfg.seed = seed;
        return cfg;
    }
};

/**
 * Process-lifetime observability state for a bench binary: one trace
 * session and one report document accumulate across every run; the
 * files are written when the program exits.
 */
class ObsState
{
  public:
    explicit ObsState(const Options &opt)
        : _traceFile(opt.traceFile), _reportFile(opt.reportFile),
          _samplesFile(opt.samplesFile),
          _runs(obs::json::Value::array())
    {
        if (!_traceFile.empty()) {
            _trace = std::make_unique<obs::TraceSession>(
                opt.traceAllCategories ? obs::allCategories
                                       : obs::defaultCategories);
            _trace->attach();
        }
    }

    ~ObsState()
    {
        if (_trace) {
            _trace->detach();
            std::ofstream os(_traceFile);
            _trace->writeJson(os);
            std::cerr << "trace: " << _traceFile << " ("
                      << _trace->eventCount() << " events)\n";
        }
        if (!_reportFile.empty()) {
            obs::json::Value doc = obs::json::Value::object();
            doc["runs"] = std::move(_runs);
            std::ofstream os(_reportFile);
            os << doc.dump(2) << "\n";
            std::cerr << "report: " << _reportFile << "\n";
        }
        if (!_samplesFile.empty()) {
            const std::string csv = _samplesCsv.str();
            if (csv.empty()) {
                std::cerr << "samples: nothing sampled (is --sample=0?), "
                          << "not writing " << _samplesFile << "\n";
            } else {
                std::ofstream os(_samplesFile);
                os << csv;
                std::cerr << "samples: " << _samplesFile << "\n";
            }
        }
    }

    obs::TraceSession *trace() { return _trace.get(); }

    void
    addRun(const std::string &label, const sys::SystemConfig &scfg,
           const sys::RunResult &result, const obs::Sampler *sampler)
    {
        if (!_reportFile.empty())
            _runs.push(sys::runReportJson(label, scfg, result, sampler));
        if (!_samplesFile.empty() && sampler)
            _samplesCsv << "# " << label << "\n" << sampler->csv();
    }

  private:
    std::string _traceFile, _reportFile, _samplesFile;
    std::unique_ptr<obs::TraceSession> _trace;
    obs::json::Value _runs;
    std::ostringstream _samplesCsv;
};

/** The bench-wide ObsState; the first call's options stick. */
inline ObsState &
obsState(const Options &opt)
{
    static ObsState state(opt);
    return state;
}

/**
 * Run one workload on one system configuration.
 */
inline sys::RunResult
runWorkload(const std::string &name, const sys::SystemConfig &scfg,
            const Options &opt)
{
    auto workload = wl::makeWorkload(name, opt.workloadConfig());
    if (!workload) {
        std::cerr << "unknown workload: " << name << "\n";
        std::exit(1);
    }

    ObsState &obs = obsState(opt);
    const std::string label = name + "/" +
        (scfg.policy == sys::PolicyKind::Griffin ? "griffin"
                                                 : "first-touch");
    if (obs.trace())
        obs.trace()->beginProcess(label);

    sys::MultiGpuSystem system(scfg);
    obs::Sampler sampler;
    const bool want_samples = opt.wantSamples();
    if (want_samples) {
        system.registerProbes(sampler);
        sampler.start(system.engine(), opt.samplePeriod);
    }

    sys::RunResult result = system.run(*workload);

    sampler.stop();
    obs.addRun(label, scfg, result, want_samples ? &sampler : nullptr);
    return result;
}

/** Print a table, optionally followed by CSV. */
inline void
emit(const sys::Table &table, const Options &opt)
{
    std::cout << table.str() << "\n";
    if (opt.csv)
        std::cout << "CSV:\n" << table.csv() << "\n";
}

} // namespace griffin::bench

#endif // GRIFFIN_BENCH_COMMON_HH
