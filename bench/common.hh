/**
 * @file
 * Shared harness for the figure-regeneration benches: flag parsing,
 * workload runners, and run caching so one binary can print a whole
 * paper figure.
 *
 * Common flags:
 *   --scale=N   footprint divisor vs the paper (default 16; 1 = paper)
 *   --seed=N    master seed (default 42)
 *   --csv       also emit machine-readable CSV after each table
 *   --workload=X  restrict to one Table III abbreviation
 */

#ifndef GRIFFIN_BENCH_COMMON_HH
#define GRIFFIN_BENCH_COMMON_HH

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/workloads/workload.hh"

namespace griffin::bench {

/** Parsed command-line options. */
struct Options
{
    unsigned scaleDiv = 32;
    std::uint64_t seed = 42;
    bool csv = false;
    std::vector<std::string> workloads; // empty = all ten

    static Options
    parse(int argc, char **argv)
    {
        Options opt;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--scale=", 0) == 0) {
                opt.scaleDiv = unsigned(std::stoul(arg.substr(8)));
            } else if (arg.rfind("--seed=", 0) == 0) {
                opt.seed = std::stoull(arg.substr(7));
            } else if (arg == "--csv") {
                opt.csv = true;
            } else if (arg.rfind("--workload=", 0) == 0) {
                opt.workloads.push_back(arg.substr(11));
            } else if (arg == "--help" || arg == "-h") {
                std::cout << "flags: --scale=N --seed=N --csv"
                             " --workload=ABBV (repeatable)\n";
                std::exit(0);
            }
        }
        if (opt.workloads.empty())
            opt.workloads = wl::workloadNames();
        return opt;
    }

    wl::WorkloadConfig
    workloadConfig() const
    {
        wl::WorkloadConfig cfg;
        cfg.scaleDiv = scaleDiv;
        cfg.seed = seed;
        return cfg;
    }
};

/**
 * Run one workload on one system configuration.
 */
inline sys::RunResult
runWorkload(const std::string &name, const sys::SystemConfig &scfg,
            const Options &opt)
{
    auto workload = wl::makeWorkload(name, opt.workloadConfig());
    if (!workload) {
        std::cerr << "unknown workload: " << name << "\n";
        std::exit(1);
    }
    sys::MultiGpuSystem system(scfg);
    return system.run(*workload);
}

/** Print a table, optionally followed by CSV. */
inline void
emit(const sys::Table &table, const Options &opt)
{
    std::cout << table.str() << "\n";
    if (opt.csv)
        std::cout << "CSV:\n" << table.csv() << "\n";
}

} // namespace griffin::bench

#endif // GRIFFIN_BENCH_COMMON_HH
