/**
 * @file
 * Regenerates paper Figure 2: the percentage of pages placed on each
 * GPU under the baseline first-touch policy, across the ten
 * workloads. The paper's point: first touch concentrates pages on one
 * or two GPUs (GPU 1 wins contested pages through its dispatch head
 * start and arbitration bias).
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Figure 2: first-touch page placement per GPU ==="
              << "\n\n";

    sys::Table table({"Benchmark", "GPU1%", "GPU2%", "GPU3%", "GPU4%",
                      "onCPU", "maxShare"});

    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads)
        sweep.add(name, sys::SystemConfig::baseline());
    const auto results = sweep.run();

    for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
        const auto &name = opt.workloads[i];
        const auto &r = results[i];

        std::uint64_t on_gpus = 0;
        for (std::size_t dev = 1; dev < r.pagesPerDevice.size(); ++dev)
            on_gpus += r.pagesPerDevice[dev];

        std::vector<std::string> cells{name};
        for (std::size_t dev = 1; dev < r.pagesPerDevice.size(); ++dev) {
            cells.push_back(sys::Table::num(
                on_gpus ? 100.0 * double(r.pagesPerDevice[dev]) /
                              double(on_gpus)
                        : 0.0,
                1));
        }
        cells.push_back(std::to_string(r.pagesPerDevice[0]));
        cells.push_back(sys::Table::num(100.0 * r.maxGpuShare(), 1));
        table.addRow(std::move(cells));
    }

    bench::emit(table, opt);
    std::cout << "(uniform would be 25% per GPU; larger maxShare = "
                 "worse imbalance)\n";
    return 0;
}
