/**
 * @file
 * Replay the pinned fuzz corpus (sys/scenario_gen.hh) under the full
 * oracle battery and print a per-seed result table — the bench-shaped
 * view of what tests/integration/fuzz_corpus_test.cc asserts, for CI
 * logs and for eyeballing how the corpus exercises the knob space.
 *
 *   fuzz_corpus_replay [--jobs=N] [--csv]
 *
 * Exit status: 0 every seed clean, 1 otherwise (with a one-line repro
 * command per failure, same as griffin-fuzz).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "src/sys/oracle.hh"
#include "src/sys/scenario_gen.hh"

int
main(int argc, char **argv)
{
    using namespace griffin;

    const bench::Options opt = bench::Options::parse(
        argc, argv,
        "replays the pinned fuzz corpus; only --jobs and --csv apply "
        "(scenarios carry their own scale/seed/chaos/telemetry)");

    std::vector<sys::Scenario> scenarios;
    for (const std::uint64_t seed : sys::fuzzCorpusSeeds())
        scenarios.push_back(sys::makeScenario(seed));

    sys::FuzzOptions fuzz;
    if (opt.jobs > 0)
        fuzz.jobs = opt.jobs;
    const auto verdicts = sys::runFuzzBatch(scenarios, fuzz);

    sys::Table table({"seed", "workload", "policy", "gpus", "chaos",
                      "cycles", "migrations", "local%", "verdict"});
    unsigned failed = 0;
    for (const auto &v : verdicts) {
        const auto &s = v.scenario;
        const auto &r = v.result;
        if (!v.ok())
            ++failed;
        char seedbuf[24];
        std::snprintf(seedbuf, sizeof(seedbuf), "0x%llx",
                      static_cast<unsigned long long>(s.seed));
        table.addRow(
            {seedbuf, s.workload,
             s.config.policy == sys::PolicyKind::Griffin ? "griffin"
                                                         : "first-touch",
             std::to_string(s.config.numGpus),
             s.config.chaos.enabled() ? "on" : "off",
             v.ran ? std::to_string(r.cycles) : "-",
             v.ran ? sys::Table::num(
                         r.stats.get("pageTable.migrations"), 0)
                   : "-",
             v.ran ? sys::Table::num(r.localFraction() * 100.0, 1) : "-",
             v.ok() ? "clean"
                    : v.findings.empty() ? "did not run"
                                         : v.findings[0].oracle});
    }
    bench::emit(table, opt);

    for (const auto &v : verdicts) {
        if (v.ok())
            continue;
        for (const auto &f : v.findings)
            std::printf("FAIL seed=0x%llx oracle=%s\n     %s\n",
                        static_cast<unsigned long long>(v.scenario.seed),
                        f.oracle.c_str(), f.detail.c_str());
        std::printf("repro: %s\n", v.scenario.reproCommand().c_str());
    }
    std::printf("corpus: %zu seeds, %u failed\n", verdicts.size(),
                failed);
    return failed == 0 ? 0 : 1;
}
