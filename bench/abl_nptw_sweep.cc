/**
 * @file
 * Ablation: CPMS fault batch size N_PTW (paper Table I: 8 — the
 * number of IOMMU page table walkers). Sweeps the batch size and
 * reports speedup over the baseline; 1 reduces CPMS's CPU-GPU half to
 * the baseline's FCFS discipline.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(argc, argv);
    if (opt.workloads.size() == 10)
        opt.workloads = {"MT", "FIR", "SC", "BFS"};

    const unsigned sizes[] = {1, 2, 4, 8, 16, 32};

    std::cout << "=== Ablation: CPMS fault batch size (N_PTW) ===\n\n";

    std::vector<std::string> header{"N_PTW"};
    for (const auto &name : opt.workloads)
        header.push_back(name);
    header.push_back("geomean");
    sys::Table table(header);

    const std::size_t nwl = opt.workloads.size();
    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads)
        sweep.add(name, sys::SystemConfig::baseline());
    for (const unsigned n : sizes) {
        sys::SystemConfig cfg = sys::SystemConfig::griffinDefault();
        cfg.griffin.nPtw = n;
        for (const auto &name : opt.workloads)
            sweep.add(name, cfg, "nptw=" + std::to_string(n));
    }
    const auto results = sweep.run();

    std::size_t idx = nwl; // results[0..nwl) are the baselines
    for (const unsigned n : sizes) {
        std::vector<std::string> cells{std::to_string(n)};
        std::vector<double> speedups;
        for (std::size_t i = 0; i < nwl; ++i) {
            const double s = double(results[i].cycles) /
                             double(results[idx++].cycles);
            speedups.push_back(s);
            cells.push_back(sys::Table::num(s));
        }
        cells.push_back(sys::Table::num(sys::geomean(speedups)));
        table.addRow(std::move(cells));
    }

    bench::emit(table, opt);
    return 0;
}
