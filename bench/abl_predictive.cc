/**
 * @file
 * Extension bench (paper SS VII future work): reactive versus
 * predictive inter-GPU migration. Predictive mode extrapolates rising
 * access trends and migrates owner-shifting pages before the
 * crossover is observed, trading Figure 10's reactive lag for the
 * risk of acting on noise (visible on the Random workloads).
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Extension: reactive vs predictive migration ===\n\n";

    sys::Table table({"Benchmark", "Reactive", "Predictive", "P/R",
                      "Mig(R)", "Mig(P)"});
    std::vector<double> ratios;

    for (const auto &name : opt.workloads) {
        const auto base = bench::runWorkload(
            name, sys::SystemConfig::baseline(), opt);

        const auto reactive = bench::runWorkload(
            name, sys::SystemConfig::griffinDefault(), opt);

        sys::SystemConfig pcfg = sys::SystemConfig::griffinDefault();
        pcfg.griffin.enablePredictiveMigration = true;
        const auto predictive = bench::runWorkload(name, pcfg, opt);

        const double r_spd = double(base.cycles) / double(reactive.cycles);
        const double p_spd =
            double(base.cycles) / double(predictive.cycles);
        ratios.push_back(p_spd / r_spd);
        table.addRow({name, sys::Table::num(r_spd),
                      sys::Table::num(p_spd),
                      sys::Table::num(p_spd / r_spd),
                      std::to_string(reactive.pagesMigratedInterGpu),
                      std::to_string(predictive.pagesMigratedInterGpu)});
    }
    table.addRow({"geomean", "", "",
                  sys::Table::num(sys::geomean(ratios)), "", ""});

    bench::emit(table, opt);
    std::cout << "(P/R > 1: prediction helped; < 1: it chased noise)\n";
    return 0;
}
