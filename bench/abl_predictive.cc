/**
 * @file
 * Extension bench (paper SS VII future work): reactive versus
 * predictive inter-GPU migration. Predictive mode extrapolates rising
 * access trends and migrates owner-shifting pages before the
 * crossover is observed, trading Figure 10's reactive lag for the
 * risk of acting on noise (visible on the Random workloads).
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Extension: reactive vs predictive migration ===\n\n";

    sys::Table table({"Benchmark", "Reactive", "Predictive", "P/R",
                      "Mig(R)", "Mig(P)"});
    std::vector<double> ratios;

    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads) {
        sweep.add(name, sys::SystemConfig::baseline());
        sweep.add(name, sys::SystemConfig::griffinDefault());
        sys::SystemConfig pcfg = sys::SystemConfig::griffinDefault();
        pcfg.griffin.enablePredictiveMigration = true;
        sweep.add(name, pcfg, "mode=predictive");
    }
    const auto results = sweep.run();

    for (std::size_t i = 0; i < opt.workloads.size(); ++i) {
        const auto &name = opt.workloads[i];
        const auto &base = results[3 * i];
        const auto &reactive = results[3 * i + 1];
        const auto &predictive = results[3 * i + 2];

        const double r_spd = double(base.cycles) / double(reactive.cycles);
        const double p_spd =
            double(base.cycles) / double(predictive.cycles);
        ratios.push_back(p_spd / r_spd);
        table.addRow({name, sys::Table::num(r_spd),
                      sys::Table::num(p_spd),
                      sys::Table::num(p_spd / r_spd),
                      std::to_string(reactive.pagesMigratedInterGpu),
                      std::to_string(predictive.pagesMigratedInterGpu)});
    }
    table.addRow({"geomean", "", "",
                  sys::Table::num(sys::geomean(ratios)), "", ""});

    bench::emit(table, opt);
    std::cout << "(P/R > 1: prediction helped; < 1: it chased noise)\n";
    return 0;
}
