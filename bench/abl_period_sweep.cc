/**
 * @file
 * Ablation: the access-count collection period T_ac (paper Table I:
 * 1000 cycles) and the CPMS migration interval. Short periods react
 * fast but cost messages and drain pressure; long periods starve the
 * classifier.
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    auto opt = bench::Options::parse(argc, argv);
    if (opt.workloads.size() == 10)
        opt.workloads = {"SC", "ST", "KM"};

    std::cout << "=== Ablation: collection period T_ac and migration "
                 "interval ===\n\n";

    std::vector<std::string> header{"T_ac", "migInterval"};
    for (const auto &name : opt.workloads)
        header.push_back(name);
    header.push_back("geomean");
    sys::Table table(header);

    const Tick periods[] = {500, 1000, 2000, 4000};
    const unsigned intervals[] = {1, 4, 8, 16};

    const std::size_t nwl = opt.workloads.size();
    bench::Sweep sweep(opt);
    for (const auto &name : opt.workloads)
        sweep.add(name, sys::SystemConfig::baseline());
    for (const Tick t_ac : periods) {
        for (const unsigned interval : intervals) {
            sys::SystemConfig cfg = sys::SystemConfig::griffinDefault();
            cfg.griffin.tAc = t_ac;
            cfg.griffin.migrationInterval = interval;
            for (const auto &name : opt.workloads) {
                sweep.add(name, cfg,
                          "tac=" + std::to_string(t_ac) +
                              ",mig=" + std::to_string(interval));
            }
        }
    }
    const auto results = sweep.run();

    std::size_t idx = nwl; // results[0..nwl) are the baselines
    for (const Tick t_ac : periods) {
        for (const unsigned interval : intervals) {
            std::vector<std::string> cells{std::to_string(t_ac),
                                           std::to_string(interval)};
            std::vector<double> speedups;
            for (std::size_t i = 0; i < nwl; ++i) {
                const double s = double(results[i].cycles) /
                                 double(results[idx++].cycles);
                speedups.push_back(s);
                cells.push_back(sys::Table::num(s));
            }
            cells.push_back(sys::Table::num(sys::geomean(speedups)));
            table.addRow(std::move(cells));
        }
    }

    bench::emit(table, opt);
    return 0;
}
