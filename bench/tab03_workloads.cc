/**
 * @file
 * Regenerates paper Table III: the workload roster with suite, access
 * pattern and memory footprint, plus the generated trace volume at
 * the current scale (a sanity check that the generators match their
 * specification).
 */

#include <iostream>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(argc, argv);

    std::cout << "=== Table III: workloads ===\n\n";

    sys::Table table({"Abbv", "Application", "Suite", "Pattern",
                      "PaperMB", "ScaledMB", "Kernels", "WGs/kernel",
                      "Ops(k0)"});

    for (const auto &name : opt.workloads) {
        auto w = wl::makeWorkload(name, opt.workloadConfig());
        const auto kernel = w->makeKernel(0);
        table.addRow({w->name(), w->fullName(), w->suite(),
                      w->accessPattern(),
                      std::to_string(w->paperFootprintBytes() >> 20),
                      sys::Table::num(double(w->footprintBytes()) /
                                          (1 << 20),
                                      1),
                      std::to_string(w->numKernels()),
                      std::to_string(w->workgroupsPerKernel()),
                      std::to_string(kernel.totalOps())});
    }

    bench::emit(table, opt);
    return 0;
}
