/**
 * @file
 * Regenerates paper Figure 1 (motivation): the distribution of
 * accesses to one hot page of Simple Convolution from each GPU over
 * time, under the *baseline* system. The paper's point: the dominant
 * accessor changes over time, but first-touch pins the page forever.
 *
 * Output: one row per time bucket with the percentage of that
 * bucket's accesses issued by each GPU.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "bench/common.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const auto opt = bench::Options::parse(
        argc, argv,
        "fig01 always runs SC under the baseline system (the paper "
        "plots exactly that workload); --workload is ignored");

    // Track accesses per (bucket, gpu) for every page; pick the most
    // accessed page afterwards — the paper plots exactly that page.
    constexpr Tick bucket = 10000; // paper: x10000 cycles
    std::map<PageId, std::map<std::uint64_t,
                              std::vector<std::uint64_t>>> counts;
    std::map<PageId, std::uint64_t> totals;
    unsigned num_gpus = 0;

    // A single-job sweep runs inline on this thread, so the probe may
    // write straight into the local maps.
    bench::Sweep sweep(opt);
    sweep.add("SC", sys::SystemConfig::baseline(), "",
              [&](sys::MultiGpuSystem &system) {
                  num_gpus = system.numGpus();
                  system.setAccessProbe(
                      [&](Tick now, DeviceId gpu, PageId page) {
                          auto &row = counts[page][now / bucket];
                          if (row.empty())
                              row.assign(num_gpus, 0);
                          ++row[gpu - 1];
                          ++totals[page];
                      });
              });
    const auto result = sweep.run().at(0);

    PageId hot = 0;
    std::uint64_t best = 0;
    for (const auto &[page, n] : totals) {
        if (n > best) {
            best = n;
            hot = page;
        }
    }

    std::cout << "=== Figure 1: accesses to the hottest SC page ("
              << hot << ", " << best << " accesses) per GPU over time"
              << " ===\n"
              << "(baseline first-touch; " << result.cycles
              << " total cycles)\n\n";

    std::vector<std::string> header{"t(x10k cyc)"};
    for (unsigned g = 1; g <= num_gpus; ++g)
        header.push_back("GPU" + std::to_string(g) + "%");
    sys::Table table(header);

    for (const auto &[b, row] : counts[hot]) {
        std::uint64_t sum = 0;
        for (const auto v : row)
            sum += v;
        if (sum == 0)
            continue;
        std::vector<std::string> cells{std::to_string(b)};
        for (const auto v : row)
            cells.push_back(sys::Table::num(100.0 * double(v) /
                                            double(sum), 1));
        table.addRow(std::move(cells));
    }
    bench::emit(table, opt);
    return 0;
}
