file(REMOVE_RECURSE
  "CMakeFiles/abl_page_size.dir/abl_page_size.cc.o"
  "CMakeFiles/abl_page_size.dir/abl_page_size.cc.o.d"
  "abl_page_size"
  "abl_page_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
