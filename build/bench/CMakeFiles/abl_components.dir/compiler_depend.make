# Empty compiler generated dependencies file for abl_components.
# This may be replaced when dependencies are built.
