file(REMOVE_RECURSE
  "CMakeFiles/abl_components.dir/abl_components.cc.o"
  "CMakeFiles/abl_components.dir/abl_components.cc.o.d"
  "abl_components"
  "abl_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
