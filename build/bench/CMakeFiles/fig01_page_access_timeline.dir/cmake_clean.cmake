file(REMOVE_RECURSE
  "CMakeFiles/fig01_page_access_timeline.dir/fig01_page_access_timeline.cc.o"
  "CMakeFiles/fig01_page_access_timeline.dir/fig01_page_access_timeline.cc.o.d"
  "fig01_page_access_timeline"
  "fig01_page_access_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_page_access_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
