# Empty compiler generated dependencies file for fig01_page_access_timeline.
# This may be replaced when dependencies are built.
