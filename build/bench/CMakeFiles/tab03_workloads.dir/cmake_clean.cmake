file(REMOVE_RECURSE
  "CMakeFiles/tab03_workloads.dir/tab03_workloads.cc.o"
  "CMakeFiles/tab03_workloads.dir/tab03_workloads.cc.o.d"
  "tab03_workloads"
  "tab03_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
