# Empty compiler generated dependencies file for tab03_workloads.
# This may be replaced when dependencies are built.
