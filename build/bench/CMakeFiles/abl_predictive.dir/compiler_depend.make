# Empty compiler generated dependencies file for abl_predictive.
# This may be replaced when dependencies are built.
