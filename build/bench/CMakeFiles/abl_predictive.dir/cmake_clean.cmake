file(REMOVE_RECURSE
  "CMakeFiles/abl_predictive.dir/abl_predictive.cc.o"
  "CMakeFiles/abl_predictive.dir/abl_predictive.cc.o.d"
  "abl_predictive"
  "abl_predictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
