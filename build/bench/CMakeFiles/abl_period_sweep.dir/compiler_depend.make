# Empty compiler generated dependencies file for abl_period_sweep.
# This may be replaced when dependencies are built.
