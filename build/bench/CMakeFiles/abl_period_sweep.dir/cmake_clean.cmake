file(REMOVE_RECURSE
  "CMakeFiles/abl_period_sweep.dir/abl_period_sweep.cc.o"
  "CMakeFiles/abl_period_sweep.dir/abl_period_sweep.cc.o.d"
  "abl_period_sweep"
  "abl_period_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_period_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
