# Empty dependencies file for fig11_acud_vs_flush.
# This may be replaced when dependencies are built.
