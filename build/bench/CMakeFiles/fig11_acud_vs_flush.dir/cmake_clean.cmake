file(REMOVE_RECURSE
  "CMakeFiles/fig11_acud_vs_flush.dir/fig11_acud_vs_flush.cc.o"
  "CMakeFiles/fig11_acud_vs_flush.dir/fig11_acud_vs_flush.cc.o.d"
  "fig11_acud_vs_flush"
  "fig11_acud_vs_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_acud_vs_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
