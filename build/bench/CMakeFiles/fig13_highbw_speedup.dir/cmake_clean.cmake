file(REMOVE_RECURSE
  "CMakeFiles/fig13_highbw_speedup.dir/fig13_highbw_speedup.cc.o"
  "CMakeFiles/fig13_highbw_speedup.dir/fig13_highbw_speedup.cc.o.d"
  "fig13_highbw_speedup"
  "fig13_highbw_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_highbw_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
