# Empty compiler generated dependencies file for fig13_highbw_speedup.
# This may be replaced when dependencies are built.
