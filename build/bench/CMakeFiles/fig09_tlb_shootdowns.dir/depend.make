# Empty dependencies file for fig09_tlb_shootdowns.
# This may be replaced when dependencies are built.
