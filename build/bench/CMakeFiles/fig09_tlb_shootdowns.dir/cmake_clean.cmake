file(REMOVE_RECURSE
  "CMakeFiles/fig09_tlb_shootdowns.dir/fig09_tlb_shootdowns.cc.o"
  "CMakeFiles/fig09_tlb_shootdowns.dir/fig09_tlb_shootdowns.cc.o.d"
  "fig09_tlb_shootdowns"
  "fig09_tlb_shootdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_tlb_shootdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
