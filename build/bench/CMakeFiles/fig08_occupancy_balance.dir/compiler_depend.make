# Empty compiler generated dependencies file for fig08_occupancy_balance.
# This may be replaced when dependencies are built.
