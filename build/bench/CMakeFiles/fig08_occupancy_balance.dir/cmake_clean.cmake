file(REMOVE_RECURSE
  "CMakeFiles/fig08_occupancy_balance.dir/fig08_occupancy_balance.cc.o"
  "CMakeFiles/fig08_occupancy_balance.dir/fig08_occupancy_balance.cc.o.d"
  "fig08_occupancy_balance"
  "fig08_occupancy_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_occupancy_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
