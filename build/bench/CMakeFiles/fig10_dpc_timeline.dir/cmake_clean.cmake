file(REMOVE_RECURSE
  "CMakeFiles/fig10_dpc_timeline.dir/fig10_dpc_timeline.cc.o"
  "CMakeFiles/fig10_dpc_timeline.dir/fig10_dpc_timeline.cc.o.d"
  "fig10_dpc_timeline"
  "fig10_dpc_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dpc_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
