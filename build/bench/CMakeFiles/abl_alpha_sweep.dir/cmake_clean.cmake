file(REMOVE_RECURSE
  "CMakeFiles/abl_alpha_sweep.dir/abl_alpha_sweep.cc.o"
  "CMakeFiles/abl_alpha_sweep.dir/abl_alpha_sweep.cc.o.d"
  "abl_alpha_sweep"
  "abl_alpha_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_alpha_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
