# Empty compiler generated dependencies file for abl_alpha_sweep.
# This may be replaced when dependencies are built.
