# Empty compiler generated dependencies file for abl_nptw_sweep.
# This may be replaced when dependencies are built.
