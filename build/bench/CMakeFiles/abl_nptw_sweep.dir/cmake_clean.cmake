file(REMOVE_RECURSE
  "CMakeFiles/abl_nptw_sweep.dir/abl_nptw_sweep.cc.o"
  "CMakeFiles/abl_nptw_sweep.dir/abl_nptw_sweep.cc.o.d"
  "abl_nptw_sweep"
  "abl_nptw_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nptw_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
