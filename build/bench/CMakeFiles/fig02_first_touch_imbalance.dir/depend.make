# Empty dependencies file for fig02_first_touch_imbalance.
# This may be replaced when dependencies are built.
