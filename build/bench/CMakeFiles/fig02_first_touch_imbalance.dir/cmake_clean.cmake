file(REMOVE_RECURSE
  "CMakeFiles/fig02_first_touch_imbalance.dir/fig02_first_touch_imbalance.cc.o"
  "CMakeFiles/fig02_first_touch_imbalance.dir/fig02_first_touch_imbalance.cc.o.d"
  "fig02_first_touch_imbalance"
  "fig02_first_touch_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_first_touch_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
