# Empty compiler generated dependencies file for abl_gpu_count.
# This may be replaced when dependencies are built.
