file(REMOVE_RECURSE
  "CMakeFiles/abl_gpu_count.dir/abl_gpu_count.cc.o"
  "CMakeFiles/abl_gpu_count.dir/abl_gpu_count.cc.o.d"
  "abl_gpu_count"
  "abl_gpu_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gpu_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
