
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acud.cc" "src/CMakeFiles/griffin.dir/core/acud.cc.o" "gcc" "src/CMakeFiles/griffin.dir/core/acud.cc.o.d"
  "/root/repo/src/core/cpms.cc" "src/CMakeFiles/griffin.dir/core/cpms.cc.o" "gcc" "src/CMakeFiles/griffin.dir/core/cpms.cc.o.d"
  "/root/repo/src/core/dftm.cc" "src/CMakeFiles/griffin.dir/core/dftm.cc.o" "gcc" "src/CMakeFiles/griffin.dir/core/dftm.cc.o.d"
  "/root/repo/src/core/dpc.cc" "src/CMakeFiles/griffin.dir/core/dpc.cc.o" "gcc" "src/CMakeFiles/griffin.dir/core/dpc.cc.o.d"
  "/root/repo/src/core/first_touch_policy.cc" "src/CMakeFiles/griffin.dir/core/first_touch_policy.cc.o" "gcc" "src/CMakeFiles/griffin.dir/core/first_touch_policy.cc.o.d"
  "/root/repo/src/core/griffin_policy.cc" "src/CMakeFiles/griffin.dir/core/griffin_policy.cc.o" "gcc" "src/CMakeFiles/griffin.dir/core/griffin_policy.cc.o.d"
  "/root/repo/src/driver/driver.cc" "src/CMakeFiles/griffin.dir/driver/driver.cc.o" "gcc" "src/CMakeFiles/griffin.dir/driver/driver.cc.o.d"
  "/root/repo/src/gpu/access_counter.cc" "src/CMakeFiles/griffin.dir/gpu/access_counter.cc.o" "gcc" "src/CMakeFiles/griffin.dir/gpu/access_counter.cc.o.d"
  "/root/repo/src/gpu/compute_unit.cc" "src/CMakeFiles/griffin.dir/gpu/compute_unit.cc.o" "gcc" "src/CMakeFiles/griffin.dir/gpu/compute_unit.cc.o.d"
  "/root/repo/src/gpu/dispatcher.cc" "src/CMakeFiles/griffin.dir/gpu/dispatcher.cc.o" "gcc" "src/CMakeFiles/griffin.dir/gpu/dispatcher.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/griffin.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/griffin.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/pmc.cc" "src/CMakeFiles/griffin.dir/gpu/pmc.cc.o" "gcc" "src/CMakeFiles/griffin.dir/gpu/pmc.cc.o.d"
  "/root/repo/src/gpu/rdma.cc" "src/CMakeFiles/griffin.dir/gpu/rdma.cc.o" "gcc" "src/CMakeFiles/griffin.dir/gpu/rdma.cc.o.d"
  "/root/repo/src/gpu/shader_engine.cc" "src/CMakeFiles/griffin.dir/gpu/shader_engine.cc.o" "gcc" "src/CMakeFiles/griffin.dir/gpu/shader_engine.cc.o.d"
  "/root/repo/src/interconnect/link.cc" "src/CMakeFiles/griffin.dir/interconnect/link.cc.o" "gcc" "src/CMakeFiles/griffin.dir/interconnect/link.cc.o.d"
  "/root/repo/src/interconnect/switch.cc" "src/CMakeFiles/griffin.dir/interconnect/switch.cc.o" "gcc" "src/CMakeFiles/griffin.dir/interconnect/switch.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/griffin.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/griffin.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/griffin.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/griffin.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/griffin.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/griffin.dir/mem/page_table.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/griffin.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/griffin.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/griffin.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/griffin.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/griffin.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/griffin.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/griffin.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/griffin.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/griffin.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/griffin.dir/sim/stats.cc.o.d"
  "/root/repo/src/sys/multi_gpu_system.cc" "src/CMakeFiles/griffin.dir/sys/multi_gpu_system.cc.o" "gcc" "src/CMakeFiles/griffin.dir/sys/multi_gpu_system.cc.o.d"
  "/root/repo/src/sys/report.cc" "src/CMakeFiles/griffin.dir/sys/report.cc.o" "gcc" "src/CMakeFiles/griffin.dir/sys/report.cc.o.d"
  "/root/repo/src/sys/system_config.cc" "src/CMakeFiles/griffin.dir/sys/system_config.cc.o" "gcc" "src/CMakeFiles/griffin.dir/sys/system_config.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/griffin.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/bs.cc" "src/CMakeFiles/griffin.dir/workloads/bs.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/bs.cc.o.d"
  "/root/repo/src/workloads/fir.cc" "src/CMakeFiles/griffin.dir/workloads/fir.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/fir.cc.o.d"
  "/root/repo/src/workloads/flw.cc" "src/CMakeFiles/griffin.dir/workloads/flw.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/flw.cc.o.d"
  "/root/repo/src/workloads/fw.cc" "src/CMakeFiles/griffin.dir/workloads/fw.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/fw.cc.o.d"
  "/root/repo/src/workloads/km.cc" "src/CMakeFiles/griffin.dir/workloads/km.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/km.cc.o.d"
  "/root/repo/src/workloads/mt.cc" "src/CMakeFiles/griffin.dir/workloads/mt.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/mt.cc.o.d"
  "/root/repo/src/workloads/pr.cc" "src/CMakeFiles/griffin.dir/workloads/pr.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/pr.cc.o.d"
  "/root/repo/src/workloads/sc.cc" "src/CMakeFiles/griffin.dir/workloads/sc.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/sc.cc.o.d"
  "/root/repo/src/workloads/st.cc" "src/CMakeFiles/griffin.dir/workloads/st.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/st.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/CMakeFiles/griffin.dir/workloads/trace.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/trace.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/griffin.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/griffin.dir/workloads/workload.cc.o.d"
  "/root/repo/src/xlat/iommu.cc" "src/CMakeFiles/griffin.dir/xlat/iommu.cc.o" "gcc" "src/CMakeFiles/griffin.dir/xlat/iommu.cc.o.d"
  "/root/repo/src/xlat/tlb.cc" "src/CMakeFiles/griffin.dir/xlat/tlb.cc.o" "gcc" "src/CMakeFiles/griffin.dir/xlat/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
