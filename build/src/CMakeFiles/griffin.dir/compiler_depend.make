# Empty compiler generated dependencies file for griffin.
# This may be replaced when dependencies are built.
