file(REMOVE_RECURSE
  "libgriffin.a"
)
