# Empty compiler generated dependencies file for convolution_locality.
# This may be replaced when dependencies are built.
