file(REMOVE_RECURSE
  "CMakeFiles/convolution_locality.dir/convolution_locality.cpp.o"
  "CMakeFiles/convolution_locality.dir/convolution_locality.cpp.o.d"
  "convolution_locality"
  "convolution_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolution_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
