# Empty compiler generated dependencies file for xlat_test.
# This may be replaced when dependencies are built.
