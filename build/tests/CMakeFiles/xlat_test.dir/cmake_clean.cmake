file(REMOVE_RECURSE
  "CMakeFiles/xlat_test.dir/xlat/iommu_test.cc.o"
  "CMakeFiles/xlat_test.dir/xlat/iommu_test.cc.o.d"
  "CMakeFiles/xlat_test.dir/xlat/tlb_test.cc.o"
  "CMakeFiles/xlat_test.dir/xlat/tlb_test.cc.o.d"
  "xlat_test"
  "xlat_test.pdb"
  "xlat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
