
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cpms_test.cc" "tests/CMakeFiles/core_test.dir/core/cpms_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cpms_test.cc.o.d"
  "/root/repo/tests/core/dftm_test.cc" "tests/CMakeFiles/core_test.dir/core/dftm_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/dftm_test.cc.o.d"
  "/root/repo/tests/core/dpc_test.cc" "tests/CMakeFiles/core_test.dir/core/dpc_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/dpc_test.cc.o.d"
  "/root/repo/tests/core/executor_test.cc" "tests/CMakeFiles/core_test.dir/core/executor_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/executor_test.cc.o.d"
  "/root/repo/tests/core/griffin_policy_test.cc" "tests/CMakeFiles/core_test.dir/core/griffin_policy_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/griffin_policy_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/griffin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
