
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gpu/access_counter_test.cc" "tests/CMakeFiles/gpu_test.dir/gpu/access_counter_test.cc.o" "gcc" "tests/CMakeFiles/gpu_test.dir/gpu/access_counter_test.cc.o.d"
  "/root/repo/tests/gpu/compute_unit_test.cc" "tests/CMakeFiles/gpu_test.dir/gpu/compute_unit_test.cc.o" "gcc" "tests/CMakeFiles/gpu_test.dir/gpu/compute_unit_test.cc.o.d"
  "/root/repo/tests/gpu/dispatcher_test.cc" "tests/CMakeFiles/gpu_test.dir/gpu/dispatcher_test.cc.o" "gcc" "tests/CMakeFiles/gpu_test.dir/gpu/dispatcher_test.cc.o.d"
  "/root/repo/tests/gpu/gpu_test.cc" "tests/CMakeFiles/gpu_test.dir/gpu/gpu_test.cc.o" "gcc" "tests/CMakeFiles/gpu_test.dir/gpu/gpu_test.cc.o.d"
  "/root/repo/tests/gpu/rdma_pmc_test.cc" "tests/CMakeFiles/gpu_test.dir/gpu/rdma_pmc_test.cc.o" "gcc" "tests/CMakeFiles/gpu_test.dir/gpu/rdma_pmc_test.cc.o.d"
  "/root/repo/tests/gpu/shader_engine_test.cc" "tests/CMakeFiles/gpu_test.dir/gpu/shader_engine_test.cc.o" "gcc" "tests/CMakeFiles/gpu_test.dir/gpu/shader_engine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/griffin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
