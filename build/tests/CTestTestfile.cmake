# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/xlat_test[1]_include.cmake")
include("/root/repo/build/tests/interconnect_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/sys_test[1]_include.cmake")
include("/root/repo/build/tests/integration_smoke_test[1]_include.cmake")
