/**
 * @file
 * Convolution locality study: watch Griffin's DPC chase the owner of
 * the hottest Simple Convolution page in real time (the scenario of
 * paper Figures 1 and 10).
 *
 * The example installs a per-access probe to find the hottest page,
 * then re-runs with a DPC period probe on that page and prints an
 * ASCII strip chart of each GPU's filtered access rate with the
 * page's location overlaid.
 */

#include <iostream>
#include <map>
#include <set>
#include <vector>

#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/workloads/suite.hh"

using namespace griffin;

namespace {

/**
 * Pick the page whose dominant accessor changes the most over time —
 * the paper plots exactly such an owner-shifting page. Returns the
 * hottest page among those with the most distinct bucket winners.
 */
PageId
findOwnerShiftingPage(const std::map<PageId,
                                     std::map<std::uint64_t,
                                              std::vector<std::uint64_t>>>
                          &counts)
{
    PageId best_page = 0;
    std::size_t best_shifts = 0;
    std::uint64_t best_total = 0;
    for (const auto &[page, buckets] : counts) {
        std::set<std::size_t> winners;
        std::uint64_t total = 0;
        for (const auto &[bucket, row] : buckets) {
            std::size_t win = 0;
            std::uint64_t win_n = 0, bucket_n = 0;
            for (std::size_t g = 0; g < row.size(); ++g) {
                bucket_n += row[g];
                if (row[g] > win_n) {
                    win_n = row[g];
                    win = g;
                }
            }
            total += bucket_n;
            // Count a winner only when it truly dominates the bucket:
            // symmetric shared pages (the filter) never qualify.
            if (bucket_n >= 32 && win_n * 10 >= bucket_n * 6)
                winners.insert(win);
        }
        if (winners.size() > best_shifts ||
            (winners.size() == best_shifts && total > best_total)) {
            best_shifts = winners.size();
            best_total = total;
            best_page = page;
        }
    }
    return best_page;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned scale = argc > 1 ? unsigned(std::stoul(argv[1])) : 32;
    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = scale;

    // Pass 1: find the page whose dominant accessor shifts the most.
    PageId hot = 0;
    {
        wl::ScWorkload sc(wcfg);
        sys::MultiGpuSystem sys1(sys::SystemConfig::baseline());
        std::map<PageId,
                 std::map<std::uint64_t, std::vector<std::uint64_t>>>
            counts;
        sys1.setAccessProbe([&](Tick t, DeviceId gpu, PageId page) {
            auto &row = counts[page][t / 20000];
            if (row.empty())
                row.assign(4, 0);
            ++row[gpu - 1];
        });
        sys1.run(sc);
        hot = findOwnerShiftingPage(counts);
        std::cout << "owner-shifting page: " << hot << "\n\n";
    }

    // Pass 2: chart that page's per-GPU rates and location.
    wl::ScWorkload sc(wcfg);
    sys::MultiGpuSystem system(sys::SystemConfig::griffinDefault());

    struct Sample
    {
        Tick t;
        std::vector<double> rates;
        DeviceId loc;
    };
    std::vector<Sample> samples;
    system.griffinPolicy()->setPeriodProbe(
        [&](Tick t, PageId, const std::vector<double> &c, DeviceId loc) {
            samples.push_back({t, c, loc});
        },
        {hot});

    const auto result = system.run(sc);

    std::cout << "time      owner   per-GPU filtered counts\n";
    double max_c = 1.0;
    for (const auto &s : samples)
        for (const double c : s.rates)
            max_c = std::max(max_c, c);

    DeviceId last = invalidDeviceId;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const auto &s = samples[i];
        const bool moved = s.loc != last;
        last = s.loc;
        if (!moved && i % 20 != 0)
            continue;
        double total = 0;
        for (const double c : s.rates)
            total += c;
        if (!moved && total < 0.5)
            continue;
        std::cout << sys::Table::num(double(s.t) / 1000.0, 0) << "k\t"
                  << (s.loc == cpuDeviceId
                          ? std::string("CPU ")
                          : "GPU" + std::to_string(s.loc))
                  << (moved ? "*" : " ") << "  ";
        for (std::size_t g = 0; g < s.rates.size(); ++g) {
            std::cout << "G" << (g + 1)
                      << sys::asciiBar(s.rates[g], max_c, 12) << " ";
        }
        std::cout << "\n";
    }

    std::cout << "\n(* = the page moved; " << result.pagesMigratedInterGpu
              << " pages migrated between GPUs in total)\n";
    return 0;
}
