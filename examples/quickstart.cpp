/**
 * @file
 * Quickstart: build a paper-configuration 4-GPU system, run one
 * workload under the baseline and under Griffin, and compare.
 *
 *   ./examples/quickstart [workload] [scaleDiv]
 *
 * This is the smallest end-to-end use of the library's public API:
 * SystemConfig -> MultiGpuSystem -> Workload -> run() -> RunResult.
 */

#include <iostream>
#include <string>

#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/workloads/workload.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "SC";
    const unsigned scale = argc > 2 ? unsigned(std::stoul(argv[2])) : 32;

    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = scale;

    std::cout << "Running " << name << " at 1/" << scale
              << " of the paper footprint on a 4-GPU PCIe system...\n\n";

    // --- Baseline: first-touch demand paging + pinning + DCA. ------
    auto workload = wl::makeWorkload(name, wcfg);
    if (!workload) {
        std::cerr << "unknown workload '" << name << "'; pick one of:";
        for (const auto &n : wl::workloadNames())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }
    sys::MultiGpuSystem baseline(sys::SystemConfig::baseline());
    const auto base = baseline.run(*workload);

    // --- Griffin: DFTM + CPMS + DPC + ACUD. -------------------------
    auto workload2 = wl::makeWorkload(name, wcfg);
    sys::MultiGpuSystem griffin(sys::SystemConfig::griffinDefault());
    const auto grif = griffin.run(*workload2);

    std::cout << "baseline : " << base.cycles << " cycles, "
              << sys::Table::num(100 * base.localFraction(), 1)
              << "% local accesses, " << base.cpuShootdowns
              << " CPU shootdowns\n";
    std::cout << "griffin  : " << grif.cycles << " cycles, "
              << sys::Table::num(100 * grif.localFraction(), 1)
              << "% local accesses, " << grif.totalShootdowns()
              << " total shootdowns, " << grif.pagesMigratedInterGpu
              << " inter-GPU migrations\n\n";
    std::cout << "speedup  : "
              << sys::Table::num(double(base.cycles) /
                                 double(grif.cycles))
              << "x\n\n";

    std::cout << "final page distribution (GPU1..GPU4):\n";
    for (int which = 0; which < 2; ++which) {
        const auto &r = which ? grif : base;
        std::cout << (which ? "  griffin : " : "  baseline: ");
        for (std::size_t dev = 1; dev < r.pagesPerDevice.size(); ++dev)
            std::cout << r.pagesPerDevice[dev] << " ";
        std::cout << "(max share "
                  << sys::Table::num(100 * r.maxGpuShare(), 1)
                  << "%)\n";
    }
    return 0;
}
