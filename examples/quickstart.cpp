/**
 * @file
 * Quickstart: build a paper-configuration 4-GPU system, run one
 * workload under the baseline and under Griffin, and compare.
 *
 *   ./examples/quickstart [workload] [scaleDiv]
 *                         [--trace=FILE] [--report=FILE]
 *
 * This is the smallest end-to-end use of the library's public API:
 * SystemConfig -> MultiGpuSystem -> Workload -> run() -> RunResult.
 * With --trace the two runs are recorded as Chrome trace-event JSON
 * (open in ui.perfetto.dev); with --report a JSON run report with
 * counters and latency percentiles is written.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/obs/trace.hh"
#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/workloads/workload.hh"

using namespace griffin;

int
main(int argc, char **argv)
{
    std::string trace_file, report_file;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace=", 0) == 0)
            trace_file = arg.substr(8);
        else if (arg.rfind("--report=", 0) == 0)
            report_file = arg.substr(9);
        else
            positional.push_back(arg);
    }
    const std::string name = !positional.empty() ? positional[0] : "SC";
    const unsigned scale = positional.size() > 1
        ? unsigned(std::stoul(positional[1]))
        : 32;

    obs::TraceSession trace;
    if (!trace_file.empty())
        trace.attach();

    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = scale;

    std::cout << "Running " << name << " at 1/" << scale
              << " of the paper footprint on a 4-GPU PCIe system...\n\n";

    // --- Baseline: first-touch demand paging + pinning + DCA. ------
    auto workload = wl::makeWorkload(name, wcfg);
    if (!workload) {
        std::cerr << "unknown workload '" << name << "'; pick one of:";
        for (const auto &n : wl::workloadNames())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }
    trace.beginProcess(name + "/first-touch");
    sys::MultiGpuSystem baseline(sys::SystemConfig::baseline());
    const auto base = baseline.run(*workload);

    // --- Griffin: DFTM + CPMS + DPC + ACUD. -------------------------
    trace.beginProcess(name + "/griffin");
    auto workload2 = wl::makeWorkload(name, wcfg);
    sys::MultiGpuSystem griffin(sys::SystemConfig::griffinDefault());
    const auto grif = griffin.run(*workload2);

    std::cout << "baseline : " << base.cycles << " cycles, "
              << sys::Table::num(100 * base.localFraction(), 1)
              << "% local accesses, " << base.cpuShootdowns
              << " CPU shootdowns\n";
    std::cout << "griffin  : " << grif.cycles << " cycles, "
              << sys::Table::num(100 * grif.localFraction(), 1)
              << "% local accesses, " << grif.totalShootdowns()
              << " total shootdowns, " << grif.pagesMigratedInterGpu
              << " inter-GPU migrations\n\n";
    std::cout << "speedup  : "
              << sys::Table::num(double(base.cycles) /
                                 double(grif.cycles))
              << "x\n\n";

    std::cout << "final page distribution (GPU1..GPU4):\n";
    for (int which = 0; which < 2; ++which) {
        const auto &r = which ? grif : base;
        std::cout << (which ? "  griffin : " : "  baseline: ");
        for (std::size_t dev = 1; dev < r.pagesPerDevice.size(); ++dev)
            std::cout << r.pagesPerDevice[dev] << " ";
        std::cout << "(max share "
                  << sys::Table::num(100 * r.maxGpuShare(), 1)
                  << "%)\n";
    }

    if (!trace_file.empty()) {
        trace.detach();
        std::ofstream os(trace_file);
        trace.writeJson(os);
        std::cout << "\nwrote trace: " << trace_file << " ("
                  << trace.eventCount()
                  << " events; open in ui.perfetto.dev)\n";
    }
    if (!report_file.empty()) {
        obs::json::Value runs = obs::json::Value::array();
        runs.push(sys::runReportJson(name + "/first-touch",
                                     sys::SystemConfig::baseline(),
                                     base));
        runs.push(sys::runReportJson(name + "/griffin",
                                     sys::SystemConfig::griffinDefault(),
                                     grif));
        obs::json::Value doc = sys::reportDocument(std::move(runs));
        std::ofstream os(report_file);
        os << doc.dump(2) << "\n";
        std::cout << "wrote report: " << report_file << "\n";
    }
    return 0;
}
