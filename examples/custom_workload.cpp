/**
 * @file
 * Custom workload: shows how a downstream user plugs their own
 * application into the simulator by subclassing wl::Workload.
 *
 * The example models a two-phase pipeline — a producer kernel that
 * writes a tensor partition-local, then consumer kernels that read it
 * with a rotated partition map (an all-to-all shuffle as in
 * distributed DNN training). Under the baseline the tensor stays
 * where the producer first touched it; Griffin re-homes it to the
 * consumers.
 */

#include <algorithm>
#include <iostream>

#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/workloads/workload.hh"

using namespace griffin;

namespace {

/**
 * Producer/consumer shuffle over one tensor.
 */
class ShuffleWorkload : public wl::Workload
{
  public:
    explicit ShuffleWorkload(const wl::WorkloadConfig &cfg)
        : Workload(cfg)
    {
        _lines = footprintBytes() / lineBytes;
    }

    std::string name() const override { return "SHUF"; }
    std::string fullName() const override { return "Tensor Shuffle"; }
    std::string suite() const override { return "custom"; }
    std::string accessPattern() const override { return "Shuffle"; }
    std::uint64_t paperFootprintBytes() const override { return 48ull << 20; }
    unsigned numKernels() const override { return 5; }
    unsigned workgroupsPerKernel() const override { return 61; }

    wl::KernelLaunch
    makeKernel(unsigned k) override
    {
        const unsigned wgs = workgroupsPerKernel();
        const std::uint64_t part = _lines / wgs;
        wl::KernelLaunch launch;
        for (unsigned w = 0; w < wgs; ++w) {
            wl::TraceBuilder tb = builder();
            // Kernel 0 produces partition w; kernel k consumes the
            // partition of workgroup (w + k * 17) % wgs — a rotating
            // shuffle, so each partition's reader changes per phase.
            const unsigned src = (w + k * 17) % wgs;
            const std::uint64_t begin = src * part;
            const std::uint64_t end =
                (src + 1 == wgs) ? _lines : begin + part;
            for (std::uint64_t line = begin; line < end; ++line) {
                // Consumers re-read each line of their partition (a
                // reduction over the tensor slice).
                tb.add(line * lineBytes, k == 0);
                if (k > 0)
                    tb.add(line * lineBytes, false);
            }
            launch.workgroups.push_back(tb.finishWorkgroup(w));
        }
        return launch;
    }

  private:
    std::uint64_t _lines;
};

} // namespace

int
main(int argc, char **argv)
{
    const unsigned scale = argc > 1 ? unsigned(std::stoul(argv[1])) : 32;
    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = scale;

    std::cout << "=== Custom workload: producer/consumer tensor "
                 "shuffle ===\n\n";

    ShuffleWorkload producer_consumer(wcfg);
    sys::MultiGpuSystem baseline(sys::SystemConfig::baseline());
    const auto base = baseline.run(producer_consumer);

    ShuffleWorkload again(wcfg);
    sys::MultiGpuSystem griffin(sys::SystemConfig::griffinDefault());
    const auto grif = griffin.run(again);

    sys::Table table({"System", "Cycles", "Local%", "InterGPU",
                      "MaxShare%"});
    table.addRow({"baseline", std::to_string(base.cycles),
                  sys::Table::num(100 * base.localFraction(), 1), "0",
                  sys::Table::num(100 * base.maxGpuShare(), 1)});
    table.addRow({"griffin", std::to_string(grif.cycles),
                  sys::Table::num(100 * grif.localFraction(), 1),
                  std::to_string(grif.pagesMigratedInterGpu),
                  sys::Table::num(100 * grif.maxGpuShare(), 1)});
    std::cout << table.str() << "\n";
    std::cout << "speedup: "
              << sys::Table::num(double(base.cycles) /
                                 double(grif.cycles))
              << "x — Griffin re-homes each partition to its consumer "
                 "of the phase.\n";
    return 0;
}
