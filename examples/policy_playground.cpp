/**
 * @file
 * Policy playground: sweep Griffin's mechanisms and hyperparameters
 * on one workload and print a comparison matrix — the entry point for
 * anyone extending the policy (e.g. toward the paper's future-work
 * predictive migration).
 *
 *   ./examples/policy_playground [workload] [scaleDiv]
 */

#include <iostream>
#include <string>
#include <vector>

#include "src/sys/multi_gpu_system.hh"
#include "src/sys/report.hh"
#include "src/sys/sweep_runner.hh"
#include "src/workloads/workload.hh"

using namespace griffin;

namespace {

struct Variant
{
    std::string name;
    sys::SystemConfig config;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "KM";
    const unsigned scale = argc > 2 ? unsigned(std::stoul(argv[2])) : 32;

    std::vector<Variant> variants;
    variants.push_back({"baseline", sys::SystemConfig::baseline()});
    variants.push_back({"griffin", sys::SystemConfig::griffinDefault()});

    {
        auto cfg = sys::SystemConfig::griffinDefault();
        cfg.griffin.enableDftm = false;
        variants.push_back({"griffin -DFTM", cfg});
    }
    {
        auto cfg = sys::SystemConfig::griffinDefault();
        cfg.griffin.enableInterGpuMigration = false;
        variants.push_back({"griffin -interGPU", cfg});
    }
    {
        auto cfg = sys::SystemConfig::griffinDefault();
        cfg.griffin.useAcud = false;
        variants.push_back({"griffin +flush", cfg});
    }
    {
        auto cfg = sys::SystemConfig::griffinDefault();
        cfg.griffin.alpha = 0.03; // paper Table I's value, untuned
        variants.push_back({"griffin alpha=.03", cfg});
    }
    {
        auto cfg = sys::SystemConfig::griffinDefault();
        cfg.withHighBandwidthFabric();
        variants.push_back({"griffin NVLink-class", cfg});
    }

    std::cout << "=== " << name << " under different policies (1/"
              << scale << " scale) ===\n\n";
    sys::Table table({"Variant", "Cycles", "Speedup", "Local%",
                      "InterGPU", "Shootdowns"});

    // All variants are independent: fan them out across the hardware
    // threads and read the results back in submission order.
    sys::SweepRunner runner;
    wl::WorkloadConfig wcfg;
    wcfg.scaleDiv = scale;
    for (const auto &variant : variants) {
        sys::SweepJob job;
        job.label = variant.name;
        job.config = variant.config;
        job.makeWorkload = [name, wcfg] {
            return wl::makeWorkload(name, wcfg);
        };
        runner.submit(std::move(job));
    }
    const auto results = runner.run();

    double base_cycles = 0;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const auto &r = results[i];
        if (base_cycles == 0)
            base_cycles = double(r.cycles);
        table.addRow({variants[i].name, std::to_string(r.cycles),
                      sys::Table::num(base_cycles / double(r.cycles)),
                      sys::Table::num(100 * r.localFraction(), 1),
                      std::to_string(r.pagesMigratedInterGpu),
                      std::to_string(r.totalShootdowns())});
    }
    std::cout << table.str();
    return 0;
}
